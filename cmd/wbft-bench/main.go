// Command wbft-bench regenerates every table and figure of the paper's
// evaluation section (plus the beyond-the-paper SMR sweeps) through the
// declarative grid engine in internal/sweep.
//
// Usage:
//
//	wbft-bench [-exp all|<name>] [-list] [-parallel N] [-filter SUBSTR]
//	           [-seed N] [-epochs N] [-batch N] [-reps N] [-chain-epochs N]
//	           [-json FILE] [-csv FILE] [-v]
//
// -list enumerates the registered experiments; an unknown -exp value
// exits non-zero with the same list. -parallel sets the sweep worker
// pool (default: GOMAXPROCS); results are bit-identical at every worker
// count — only wall-clock changes. -filter restricts a sweep to cells
// whose name ("HB-SC/batched/depth=2") contains the substring. -json and
// -csv write the selected experiment's points as machine-readable files
// (the BENCH_*.json trajectories; with -exp all they apply to chain).
// -v streams per-cell progress to stderr.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/sweep"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run (see -list)")
	list := flag.Bool("list", false, "list registered experiments and exit")
	parallel := flag.Int("parallel", runtime.GOMAXPROCS(0), "sweep worker pool size")
	filter := flag.String("filter", "", "run only sweep cells whose name contains this substring")
	seed := flag.Int64("seed", 1, "simulation seed")
	epochs := flag.Int("epochs", 1, "epochs per protocol run")
	batch := flag.Int("batch", 4, "transactions per proposal")
	reps := flag.Int("reps", 3, "repetitions for crypto microbenchmarks")
	chainEpochs := flag.Int("chain-epochs", 10, "epochs per run of the chain-workload sweeps")
	jsonPath := flag.String("json", "", "write the experiment's points to this JSON trajectory file")
	csvPath := flag.String("csv", "", "write the experiment's points to this CSV file")
	verbose := flag.Bool("v", false, "stream per-cell sweep progress to stderr")
	flag.Parse()

	if *list {
		printList(os.Stdout)
		return
	}
	ctx := &bench.Context{
		Seed:        *seed,
		Epochs:      *epochs,
		Batch:       *batch,
		Reps:        *reps,
		ChainEpochs: *chainEpochs,
		Workers:     *parallel,
		Filter:      *filter,
		Out:         os.Stdout,
	}
	if *verbose {
		ctx.Progress = func(done, total int, name string, elapsed time.Duration) {
			fmt.Fprintf(os.Stderr, "  [%d/%d] %s (%s)\n", done, total, name, elapsed.Round(time.Millisecond))
		}
	}
	if err := run(ctx, *exp, *jsonPath, *csvPath); err != nil {
		fmt.Fprintln(os.Stderr, "wbft-bench:", err)
		os.Exit(1)
	}
}

func run(ctx *bench.Context, exp, jsonPath, csvPath string) error {
	if exp == "all" {
		ran := 0
		for _, e := range bench.Experiments() {
			// With -exp all the machine-readable sinks apply to the chain
			// sweep (the historical behavior).
			ctx.JSONPath, ctx.CSVPath = "", ""
			if e.Name == "chain" {
				ctx.JSONPath, ctx.CSVPath = jsonPath, csvPath
			}
			err := e.Run(ctx)
			// Experiments use disjoint cell vocabularies, so a -filter
			// meant for one sweep legitimately matches nothing in the
			// others: skip those rather than aborting the walk.
			if errors.Is(err, sweep.ErrNoCells) {
				fmt.Fprintf(ctx.Out, "%s: no cells match -filter %q; skipped\n\n", e.Name, ctx.Filter)
				continue
			}
			if err != nil {
				return fmt.Errorf("%s: %w", e.Name, err)
			}
			ran++
			fmt.Fprintln(ctx.Out)
		}
		if ran == 0 {
			return fmt.Errorf("no experiment has cells matching -filter %q", ctx.Filter)
		}
		return nil
	}
	e, ok := bench.Lookup(exp)
	if !ok {
		fmt.Fprintf(os.Stderr, "wbft-bench: unknown experiment %q\n\n", exp)
		printList(os.Stderr)
		os.Exit(2)
	}
	if (jsonPath != "" || csvPath != "") && !e.Trajectory {
		return fmt.Errorf("experiment %q has no machine-readable point emission (-json/-csv); trajectory experiments: %s",
			exp, strings.Join(trajectoryNames(), ", "))
	}
	ctx.JSONPath, ctx.CSVPath = jsonPath, csvPath
	return e.Run(ctx)
}

func printList(w *os.File) {
	fmt.Fprintln(w, "registered experiments (-exp NAME, or -exp all):")
	for _, e := range bench.Experiments() {
		tags := ""
		if e.Trajectory {
			tags = "  [-json/-csv]"
		}
		if e.Serial {
			tags += "  [serial]"
		}
		fmt.Fprintf(w, "  %-8s %s%s\n", e.Name, e.Desc, tags)
	}
}

func trajectoryNames() []string {
	var out []string
	for _, e := range bench.Experiments() {
		if e.Trajectory {
			out = append(out, e.Name)
		}
	}
	return out
}
