// Command wbft-bench regenerates every table and figure of the paper's
// evaluation section and prints them as text tables.
//
// Usage:
//
//	wbft-bench [-exp all|table1|fig10a|fig10b|fig10c|fig10d|fig11a|fig11b|fig12a|fig12b|fig13a|fig13b|chain|faults|byz|mhchain]
//	           [-seed N] [-epochs N] [-batch N] [-reps N] [-chain-epochs N] [-json FILE]
//
// The chain experiment (sustained SMR throughput vs pipeline depth), the
// faults experiment (scenario x protocol x transport sweep of the
// scripted fault engine), the byz experiment (active-Byzantine behavior x
// protocol x transport sweep with f misbehaving replicas), and the
// mhchain experiment (pipelined SMR per cluster with cluster cuts ordered
// on the global tier — the run.Spec matrix cell the paper's one-shot
// multihop evaluation stops short of) are not in the paper; -json writes
// the selected experiment's points as a trajectory file
// (BENCH_chain.json, BENCH_faults.json, BENCH_byz.json, or
// BENCH_mhchain.json; with -exp all it applies to chain).
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run")
	seed := flag.Int64("seed", 1, "simulation seed")
	epochs := flag.Int("epochs", 1, "epochs per protocol run")
	batch := flag.Int("batch", 4, "transactions per proposal")
	reps := flag.Int("reps", 3, "repetitions for crypto microbenchmarks")
	chainEpochs := flag.Int("chain-epochs", 10, "epochs per run of the chain experiment")
	jsonPath := flag.String("json", "", "write chain experiment points to this JSON file")
	flag.Parse()

	if err := run(*exp, *seed, *epochs, *batch, *reps, *chainEpochs, *jsonPath); err != nil {
		fmt.Fprintln(os.Stderr, "wbft-bench:", err)
		os.Exit(1)
	}
}

func run(exp string, seed int64, epochs, batch, reps, chainEpochs int, jsonPath string) error {
	w := os.Stdout
	all := exp == "all"
	did := false
	sep := func() { fmt.Fprintln(w) }

	if all || exp == "table1" {
		did = true
		rows, err := bench.Table1(seed)
		if err != nil {
			return err
		}
		bench.PrintTable1(w, rows)
		sep()
	}
	if all || exp == "fig10a" {
		did = true
		rows, err := bench.Fig10aThresholdSig(reps)
		if err != nil {
			return err
		}
		bench.PrintCryptoOps(w, "Fig. 10a — threshold signature operation latency (this machine)", rows)
		sep()
	}
	if all || exp == "fig10b" {
		did = true
		rows, err := bench.Fig10bThresholdCoin(reps)
		if err != nil {
			return err
		}
		bench.PrintCryptoOps(w, "Fig. 10b — threshold coin flipping operation latency (this machine)", rows)
		sep()
	}
	if all || exp == "fig10c" {
		did = true
		bench.PrintSizes(w, bench.Fig10cSizes())
		sep()
	}
	if all || exp == "fig10d" {
		did = true
		rows, err := bench.Fig10dCryptoImpact(seed, epochs, nil)
		if err != nil {
			return err
		}
		bench.PrintFig10d(w, rows)
		sep()
	}
	if all || exp == "fig11a" {
		did = true
		rows, err := bench.Fig11aBroadcastParallelism(seed)
		if err != nil {
			return err
		}
		bench.PrintFig11a(w, rows)
		sep()
	}
	if all || exp == "fig11b" {
		did = true
		rows, err := bench.Fig11bProposalSize(seed)
		if err != nil {
			return err
		}
		bench.PrintFig11b(w, rows)
		sep()
	}
	if all || exp == "fig12a" {
		did = true
		rows, err := bench.Fig12aParallel(seed)
		if err != nil {
			return err
		}
		bench.PrintFig12(w, "Fig. 12a — ABA latency vs parallel instances", rows)
		sep()
	}
	if all || exp == "fig12b" {
		did = true
		rows, err := bench.Fig12bSerial(seed)
		if err != nil {
			return err
		}
		bench.PrintFig12(w, "Fig. 12b — ABA latency vs serial instances", rows)
		sep()
	}
	if all || exp == "fig13a" {
		did = true
		rows, err := bench.Fig13aSingleHop(seed, epochs, batch)
		if err != nil {
			return err
		}
		bench.PrintFig13(w, "Fig. 13a — single-hop: 8 consensus configurations", rows)
		sep()
	}
	if all || exp == "fig13b" {
		did = true
		rows, err := bench.Fig13bMultiHop(seed, epochs, batch)
		if err != nil {
			return err
		}
		bench.PrintFig13(w, "Fig. 13b — multi-hop (16 nodes, 4 clusters): 8 configurations", rows)
		sep()
	}
	if all || exp == "chain" {
		did = true
		rows, err := bench.ChainThroughput(seed, chainEpochs)
		if err != nil {
			return err
		}
		bench.PrintChain(w, rows)
		if jsonPath != "" {
			if err := writeJSON(w, jsonPath, func(f *os.File) error {
				return bench.WriteChainJSON(f, seed, rows)
			}); err != nil {
				return err
			}
		}
		sep()
	}
	if all || exp == "faults" {
		did = true
		rows, err := bench.FaultSweep(seed, chainEpochs)
		if err != nil {
			return err
		}
		bench.PrintFaults(w, rows)
		if jsonPath != "" && exp == "faults" {
			if err := writeJSON(w, jsonPath, func(f *os.File) error {
				return bench.WriteFaultsJSON(f, seed, rows)
			}); err != nil {
				return err
			}
		}
		sep()
	}
	if all || exp == "byz" {
		did = true
		rows, err := bench.ByzSweep(seed, chainEpochs)
		if err != nil {
			return err
		}
		bench.PrintByz(w, rows)
		if jsonPath != "" && exp == "byz" {
			if err := writeJSON(w, jsonPath, func(f *os.File) error {
				return bench.WriteByzJSON(f, seed, rows)
			}); err != nil {
				return err
			}
		}
		sep()
	}
	if all || exp == "mhchain" {
		did = true
		rows, err := bench.MHChainSweep(seed, chainEpochs)
		if err != nil {
			return err
		}
		bench.PrintMHChain(w, rows)
		if jsonPath != "" && exp == "mhchain" {
			if err := writeJSON(w, jsonPath, func(f *os.File) error {
				return bench.WriteMHChainJSON(f, seed, rows)
			}); err != nil {
				return err
			}
		}
		sep()
	}
	if !did {
		return fmt.Errorf("unknown experiment %q", exp)
	}
	return nil
}

// writeJSON writes one experiment's trajectory file and reports it.
func writeJSON(w *os.File, path string, write func(*os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(w, "wrote %s\n", path)
	return nil
}
