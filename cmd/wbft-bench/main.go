// Command wbft-bench regenerates every table and figure of the paper's
// evaluation section (plus the beyond-the-paper SMR sweeps) through the
// declarative grid engine in internal/sweep.
//
// Usage:
//
//	wbft-bench [-exp all|<name>] [-list] [-parallel N] [-filter SUBSTR]
//	           [-seed N] [-epochs N] [-batch N] [-reps N] [-chain-epochs N]
//	           [-json FILE] [-csv FILE] [-cpuprofile FILE] [-memprofile FILE]
//	           [-v]
//
// -list enumerates the registered experiments; an unknown -exp value
// exits non-zero with the same list. -parallel sets the sweep worker
// pool (default: GOMAXPROCS); results are bit-identical at every worker
// count — only wall-clock changes. -filter restricts a sweep to cells
// whose name ("HB-SC/batched/depth=2") contains the substring. -json and
// -csv write the selected experiment's points as machine-readable files
// (the BENCH_*.json trajectories; with -exp all they apply to chain).
// -cpuprofile and -memprofile write pprof profiles covering the selected
// experiments (the memory profile is a heap snapshot taken after the last
// experiment finishes, with an up-to-date allocation record). -v streams
// per-cell progress to stderr.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/debug"
	"runtime/pprof"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/sweep"
)

func main() {
	// The sweeps churn short-lived simulation objects with a tiny live
	// heap, so the default GC target (100%) collects far too eagerly.
	// Raise it unless the operator set an explicit GOGC; determinism is
	// unaffected (GC never changes simulation state, only wall time).
	if os.Getenv("GOGC") == "" {
		debug.SetGCPercent(400)
	}
	exp := flag.String("exp", "all", "experiment to run (see -list)")
	list := flag.Bool("list", false, "list registered experiments and exit")
	parallel := flag.Int("parallel", runtime.GOMAXPROCS(0), "sweep worker pool size")
	filter := flag.String("filter", "", "run only sweep cells whose name contains this substring")
	seed := flag.Int64("seed", 1, "simulation seed")
	epochs := flag.Int("epochs", 1, "epochs per protocol run")
	batch := flag.Int("batch", 4, "transactions per proposal")
	reps := flag.Int("reps", 3, "repetitions for crypto microbenchmarks")
	chainEpochs := flag.Int("chain-epochs", 10, "epochs per run of the chain-workload sweeps")
	jsonPath := flag.String("json", "", "write the experiment's points to this JSON trajectory file")
	csvPath := flag.String("csv", "", "write the experiment's points to this CSV file")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
	memProfile := flag.String("memprofile", "", "write a pprof heap profile (post-run snapshot) to this file")
	verbose := flag.Bool("v", false, "stream per-cell sweep progress to stderr")
	flag.Parse()

	if *list {
		printList(os.Stdout)
		return
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "wbft-bench: -cpuprofile:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "wbft-bench: -cpuprofile:", err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "wbft-bench: -memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // up-to-date allocation statistics
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "wbft-bench: -memprofile:", err)
			}
		}()
	}
	ctx := &bench.Context{
		Seed:        *seed,
		Epochs:      *epochs,
		Batch:       *batch,
		Reps:        *reps,
		ChainEpochs: *chainEpochs,
		Workers:     *parallel,
		Filter:      *filter,
		Out:         os.Stdout,
	}
	if *verbose {
		ctx.Progress = func(done, total int, name string, elapsed time.Duration) {
			fmt.Fprintf(os.Stderr, "  [%d/%d] %s (%s)\n", done, total, name, elapsed.Round(time.Millisecond))
		}
	}
	if err := run(ctx, *exp, *jsonPath, *csvPath); err != nil {
		fmt.Fprintln(os.Stderr, "wbft-bench:", err)
		os.Exit(1)
	}
}

func run(ctx *bench.Context, exp, jsonPath, csvPath string) error {
	if exp == "all" {
		ran := 0
		for _, e := range bench.Experiments() {
			// With -exp all the machine-readable sinks apply to the chain
			// sweep (the historical behavior).
			ctx.JSONPath, ctx.CSVPath = "", ""
			if e.Name == "chain" {
				ctx.JSONPath, ctx.CSVPath = jsonPath, csvPath
			}
			err := e.Run(ctx)
			// Experiments use disjoint cell vocabularies, so a -filter
			// meant for one sweep legitimately matches nothing in the
			// others: skip those rather than aborting the walk.
			if errors.Is(err, sweep.ErrNoCells) {
				fmt.Fprintf(ctx.Out, "%s: no cells match -filter %q; skipped\n\n", e.Name, ctx.Filter)
				continue
			}
			if err != nil {
				return fmt.Errorf("%s: %w", e.Name, err)
			}
			ran++
			fmt.Fprintln(ctx.Out)
		}
		if ran == 0 {
			return fmt.Errorf("no experiment has cells matching -filter %q", ctx.Filter)
		}
		return nil
	}
	e, ok := bench.Lookup(exp)
	if !ok {
		fmt.Fprintf(os.Stderr, "wbft-bench: unknown experiment %q\n\n", exp)
		printList(os.Stderr)
		os.Exit(2)
	}
	if (jsonPath != "" || csvPath != "") && !e.Trajectory {
		return fmt.Errorf("experiment %q has no machine-readable point emission (-json/-csv); trajectory experiments: %s",
			exp, strings.Join(trajectoryNames(), ", "))
	}
	ctx.JSONPath, ctx.CSVPath = jsonPath, csvPath
	return e.Run(ctx)
}

func printList(w *os.File) {
	fmt.Fprintln(w, "registered experiments (-exp NAME, or -exp all):")
	for _, e := range bench.Experiments() {
		tags := ""
		if e.Trajectory {
			tags = "  [-json/-csv]"
		}
		if e.Serial {
			tags += "  [serial]"
		}
		fmt.Fprintf(w, "  %-8s %s%s\n", e.Name, e.Desc, tags)
	}
}

func trajectoryNames() []string {
	var out []string
	for _, e := range bench.Experiments() {
		if e.Trajectory {
			out = append(out, e.Name)
		}
	}
	return out
}
