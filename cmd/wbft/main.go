// Command wbft runs one wireless asynchronous BFT consensus experiment
// from flags and prints the measured results. Every cell of the
// experiment matrix — Topology (single | clustered) × Workload (oneshot |
// chain) — is reachable from the same flag surface; the flags map 1:1
// onto run.Spec.
//
// Usage:
//
//	wbft [-protocol honeybadger|beat|dumbo|alea] [-coin LC|SC|CP] [-baseline]
//	     [-topology single|clustered] [-workload oneshot|chain]
//	     [-epochs N] [-seed N] [-loss P] [-heavy] [-json FILE]
//	     [-crash 3] [-scenario SPEC]
//	     [-clusters M] [-percluster N]           (clustered topology)
//	     [-batch N] [-txsize N]                  (oneshot workload)
//	     [-depth N] [-txsize N] [-txinterval D]  (chain workload)
//	     [-arrival poisson|onoff] [-rate TPS] [-clients N]
//	     [-onmean D] [-offmean D] [-mempool-cap BYTES]
//	                                             (chain open-loop traffic)
//
//	wbft chain [flags]   alias for -workload chain
//
// The chain workload runs the pipelined SMR deployment: continuous client
// traffic ordered into a replicated log across many epochs. Combined with
// -topology clustered it runs local chains per cluster and orders cluster
// cuts on the global tier.
//
// -arrival swaps the fixed -txinterval submission loop for the open-loop
// client traffic generator (internal/traffic, single-hop chain only):
// "poisson" offers memoryless aggregate arrivals at -rate tx/s; "onoff"
// spreads the same rate over -clients bursty clients, each alternating
// exponential on (-onmean) and off (-offmean) phases. -mempool-cap
// bounds each node's pending+in-flight payload bytes; submissions beyond
// it are rejected at admission and counted (backpressure, default off).
//
// -scenario scripts timed faults in the scenario DSL (see
// internal/scenario.Parse): ';'-separated events of the form
// kind[@at[+duration]][:args], with the full event vocabulary
//
//	crash@30m:3              node 3 off the air, memory lost
//	recover@55m:3            node 3 rejoins with stable storage only
//	partition@10m:0,1/2,3    split {0,1} from {2,3}
//	heal@20m                 end the partition
//	loss@5m+90s:0.5          50% delivery loss for 90s
//	jam@40m+60s              total loss for 60s
//	delay:0.25,10s           async delay adversary (prob, max extra delay)
//	byz@0s:3:equivocate      node 3 actively Byzantine: equivocate,
//	                         withhold, garbage, flipvotes, or forgecut
//	                         (internal/byz)
//	mobility@0s+2h:25,800    random-waypoint motion at 25 m/s with 800 m
//	                         radio range on a 1 km x 1 km field
//	dutycycle@0s:0.6,90s     radios awake 60% of each 90s cycle, phases
//	                         staggered per node
//	churn@10m+2h:20m,5m      every 20m a random node crashes, rejoining
//	                         5m later over the catch-up path
//
// -crash N is shorthand for a crash at t=0 that never recovers. Under the
// clustered topology, scenario node ids are flat:
// cluster*percluster + in-cluster index.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/crypto"
	"repro/internal/protocol"
	"repro/internal/run"
	"repro/internal/scenario"
	"repro/internal/traffic"
)

func main() {
	args := os.Args[1:]
	// Compat alias from the pre-run.Spec CLI: `wbft chain ...` selects the
	// chain workload.
	if len(args) > 0 && args[0] == "chain" {
		args = append([]string{"-workload", "chain"}, args[1:]...)
	}

	fs := flag.NewFlagSet("wbft", flag.ExitOnError)
	var (
		proto    = fs.String("protocol", "honeybadger", engineList())
		coin     = fs.String("coin", "SC", "LC (local) | SC (threshold sig) | CP (coin flipping)")
		baseline = fs.Bool("baseline", false, "disable ConsensusBatcher (per-instance packets)")
		topology = fs.String("topology", "single", "single (one channel) | clustered (two-tier, per-cluster channels)")
		workload = fs.String("workload", "oneshot", "oneshot (independent epochs) | chain (pipelined SMR log)")
		epochs   = fs.Int("epochs", 0, "epochs: one-shot runs this many, chain commits this many (0 = workload default)")
		seed     = fs.Int64("seed", 1, "simulation seed")
		loss     = fs.Float64("loss", 0.02, "per-receiver frame loss probability")
		heavy    = fs.Bool("heavy", false, "heavy crypto parameter set (BN254-equivalent)")
		crash    = fs.String("crash", "", "comma-separated node ids to crash at t=0")
		scen     = fs.String("scenario", "", "scripted fault DSL: crash|recover|partition|heal|loss|jam|delay|byz events (e.g. crash@30m:3;byz@0s:2:garbage)")
		jsonPath = fs.String("json", "", "also write the run.Report JSON to this file")

		clusters   = fs.Int("clusters", 4, "clustered: number of clusters M (3f+1)")
		perCluster = fs.Int("percluster", 4, "clustered: nodes per cluster (3F+1)")

		batch      = fs.Int("batch", 4, "oneshot: transactions per proposal")
		txsize     = fs.Int("txsize", 64, "bytes per transaction")
		depth      = fs.Int("depth", 2, "chain: pipeline depth (concurrent epochs)")
		txinterval = fs.Duration("txinterval", 4*time.Second, "chain: client submission interval")
		gclag      = fs.Int("gclag", 0, "chain: epochs kept behind the frontier for repairs (0 = engine default)")

		arrival    = fs.String("arrival", "", "chain: open-loop arrival process, poisson | onoff ('' = fixed -txinterval loop)")
		rate       = fs.Float64("rate", 0.02, "chain: aggregate offered rate in tx/s (with -arrival)")
		clients    = fs.Int("clients", 0, "chain: simulated client population (with -arrival; 0 = default 1000)")
		onmean     = fs.Duration("onmean", 0, "chain: mean on-phase length per client (with -arrival onoff; 0 = default)")
		offmean    = fs.Duration("offmean", 0, "chain: mean off-phase length per client (with -arrival onoff; 0 = default)")
		mempoolCap = fs.Int("mempool-cap", 0, "chain: max pending+in-flight mempool payload bytes per node (0 = unbounded)")
	)
	fs.Parse(args)

	spec := run.Defaults(checkKind(*proto), protocol.CoinKind(*coin))
	spec.Batched = !*baseline
	spec.Seed = *seed
	spec.Net.LossProb = *loss
	if *heavy {
		spec.Crypto = crypto.HeavyConfig()
	}
	spec.Scenario = buildScenario(*scen, *crash)

	switch *topology {
	case "single":
		spec.Topology = run.SingleHop()
	case "clustered":
		spec.Topology = run.Clustered(*clusters, *perCluster)
	default:
		fmt.Fprintf(os.Stderr, "wbft: unknown topology %q\n", *topology)
		os.Exit(2)
	}
	switch *workload {
	case "oneshot":
		spec.Workload = run.OneShot(*epochs)
		spec.Workload.BatchSize = *batch
		spec.Workload.TxSize = *txsize
		spec.Deadline = 8 * time.Hour
	case "chain":
		spec.Workload = run.Chain(*epochs)
		if spec.Workload.Epochs <= 0 {
			spec.Workload.Epochs = 20
		}
		spec.Workload.Window = *depth
		spec.Workload.TxSize = *txsize
		spec.Workload.TxInterval = *txinterval
		spec.Workload.GCLag = *gclag
		spec.Workload.Mempool.MaxPendingBytes = *mempoolCap
		if *arrival != "" {
			spec.Workload.Arrival = traffic.Pattern{
				Kind:    traffic.Kind(*arrival),
				Rate:    *rate,
				Clients: *clients,
				OnMean:  *onmean,
				OffMean: *offmean,
			}
		}
	default:
		fmt.Fprintf(os.Stderr, "wbft: unknown workload %q\n", *workload)
		os.Exit(2)
	}
	res, err := run.Run(spec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "wbft:", err)
		os.Exit(1)
	}
	printReport(res)
	if *jsonPath != "" {
		if err := writeReportJSON(*jsonPath, res); err != nil {
			fmt.Fprintln(os.Stderr, "wbft:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *jsonPath)
	}
}

// writeReportJSON records the run's Report in its stable JSON schema
// (EXPERIMENTS.md, "BENCH trajectories and the Report schema").
func writeReportJSON(path string, res *run.Report) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := res.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// buildScenario combines the -scenario DSL with the -crash shorthand
// (comma-separated node ids crashed at t=0, never recovered).
func buildScenario(spec, crash string) scenario.Plan {
	plan, err := scenario.Parse(spec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "wbft:", err)
		os.Exit(2)
	}
	if crash != "" {
		for _, part := range strings.Split(crash, ",") {
			id, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil {
				fmt.Fprintf(os.Stderr, "wbft: bad -crash value %q\n", part)
				os.Exit(2)
			}
			plan = plan.Then(scenario.CrashAt(0, id))
		}
	}
	return plan
}

// checkKind resolves -protocol against the engine registry, so newly
// registered engines are accepted (and listed on error) with no CLI
// changes.
func checkKind(proto string) protocol.Kind {
	kind := protocol.Kind(proto)
	if _, ok := protocol.Lookup(kind); ok {
		return kind
	}
	fmt.Fprintf(os.Stderr, "wbft: unknown protocol %q (engines: %s)\n", proto, engineList())
	os.Exit(2)
	return ""
}

// engineList renders the registry's kinds for flag help and errors.
func engineList() string {
	kinds := protocol.Kinds()
	names := make([]string, len(kinds))
	for i, k := range kinds {
		names[i] = string(k)
	}
	return strings.Join(names, " | ")
}

// printReport renders the Report: the flat counters plus whichever
// sections the matrix cell produced.
func printReport(res *run.Report) {
	fmt.Printf("experiment      %s-%s, %s x %s (batched=%v)\n",
		res.Protocol, res.Coin, res.Topology, res.Workload, res.Batched)

	if osr := res.OneShot; osr != nil {
		fmt.Printf("epochs          %d\n", len(osr.EpochLatencies))
		for i, l := range osr.EpochLatencies {
			fmt.Printf("  epoch %d       %v\n", i, l.Round(time.Millisecond))
		}
		fmt.Printf("mean latency    %v\n", osr.MeanLatency.Round(time.Millisecond))
		fmt.Printf("throughput      %.1f TPM\n", osr.TPM)
		fmt.Printf("delivered txs   %d\n", osr.DeliveredTxs)
	}
	if c := res.Chain; c != nil {
		fmt.Printf("epochs          %d committed per group, gap-free, identical at all correct nodes\n", c.EpochsCommitted)
		fmt.Printf("virtual time    %v\n", res.Duration.Round(time.Second))
		fmt.Printf("committed txs   %d (%d offered; rest is mempool backlog) (%d duplicate proposals suppressed)\n",
			c.CommittedTxs, c.SubmittedTxs, c.DedupDropped)
		fmt.Printf("throughput      %.2f committed B/s (%d bytes total)\n", c.ThroughputBps, c.CommittedBytes)
		fmt.Printf("commit latency  %v mean (epoch start -> commit)\n", c.MeanCommitLatency.Round(time.Millisecond))
		if lat := c.TxLatency; lat != nil {
			fmt.Printf("tx latency      p50 %v  p90 %v  p99 %v  max %v (submit -> commit, %d txs)\n",
				lat.P50.Round(time.Millisecond), lat.P90.Round(time.Millisecond),
				lat.P99.Round(time.Millisecond), lat.Max.Round(time.Millisecond), lat.Count)
		}
		if c.AdmissionRejected > 0 || c.PeakMempoolBytes > 0 {
			fmt.Printf("mempool         %d bytes peak pooled, %d submissions rejected at admission\n",
				c.PeakMempoolBytes, c.AdmissionRejected)
		}
		fmt.Printf("epoch cadence   %v between commits\n",
			(res.Duration / time.Duration(c.EpochsCommitted)).Round(time.Millisecond))
		fmt.Printf("open epochs     %d peak (pipeline + GC lag bound)\n", c.MaxOpenEpochs)
	}
	fmt.Printf("chan accesses   %d (collisions %d)\n", res.Accesses, res.Collisions)
	fmt.Printf("bytes on air    %d\n", res.BytesOnAir)
	fmt.Printf("signed packets  %d (sign ops %d, verify ops %d)\n", res.LogicalSent, res.SignOps, res.VerifyOps)
	if tr := res.Tiers; tr != nil {
		fmt.Printf("local accesses  %d\nglobal accesses %d\n", tr.LocalAccesses, tr.GlobalAccesses)
		if res.Chain != nil {
			fmt.Printf("global order    %d cluster cuts in %d global entries\n", tr.OrderedCuts, tr.GlobalEntries)
		}
	}
}
