// Command wbft runs one wireless asynchronous BFT consensus simulation
// from flags and prints the measured results.
//
// Usage:
//
//	wbft -protocol honeybadger|beat|dumbo -coin LC|SC|CP [-baseline]
//	     [-epochs N] [-batch N] [-txsize N] [-seed N] [-loss P]
//	     [-crash 3] [-scenario SPEC] [-multihop] [-heavy]
//
//	wbft chain [-protocol P] [-coin C] [-baseline] [-depth N] [-epochs N]
//	           [-txsize N] [-txinterval D] [-seed N] [-loss P] [-crash 3]
//	           [-scenario SPEC]
//
// The chain subcommand runs the pipelined SMR deployment: continuous
// client traffic ordered into a replicated log across many epochs.
//
// -scenario scripts timed faults in the scenario DSL (see
// internal/scenario.Parse): ';'-separated events of the form
// kind[@at[+duration]][:args], with the full event vocabulary
//
//	crash@30m:3              node 3 off the air, memory lost
//	recover@55m:3            node 3 rejoins with stable storage only
//	partition@10m:0,1/2,3    split {0,1} from {2,3}
//	heal@20m                 end the partition
//	loss@5m+90s:0.5          50% delivery loss for 90s
//	jam@40m+60s              total loss for 60s
//	delay:0.25,10s           async delay adversary (prob, max extra delay)
//	byz@0s:3:equivocate      node 3 actively Byzantine: equivocate,
//	                         withhold, garbage, or flipvotes (internal/byz)
//
// -crash N is shorthand for a crash at t=0 that never recovers.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/crypto"
	"repro/internal/protocol"
	"repro/internal/scenario"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "chain" {
		runChain(os.Args[2:])
		return
	}
	runSingle()
}

// buildScenario combines the -scenario DSL with the -crash shorthand
// (comma-separated node ids crashed at t=0, never recovered).
func buildScenario(spec, crash string) scenario.Plan {
	plan, err := scenario.Parse(spec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "wbft:", err)
		os.Exit(2)
	}
	if crash != "" {
		for _, part := range strings.Split(crash, ",") {
			id, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil {
				fmt.Fprintf(os.Stderr, "wbft: bad -crash value %q\n", part)
				os.Exit(2)
			}
			plan = plan.Then(scenario.CrashAt(0, id))
		}
	}
	return plan
}

func checkKind(proto string) protocol.Kind {
	kind := protocol.Kind(proto)
	switch kind {
	case protocol.HoneyBadger, protocol.BEAT, protocol.DumboKind:
		return kind
	default:
		fmt.Fprintf(os.Stderr, "wbft: unknown protocol %q\n", proto)
		os.Exit(2)
		return ""
	}
}

// runChain executes the SMR pipeline and prints sustained measurements.
func runChain(args []string) {
	fs := flag.NewFlagSet("wbft chain", flag.ExitOnError)
	var (
		proto      = fs.String("protocol", "honeybadger", "honeybadger | beat | dumbo")
		coin       = fs.String("coin", "SC", "LC (local) | SC (threshold sig) | CP (coin flipping)")
		baseline   = fs.Bool("baseline", false, "disable ConsensusBatcher (per-instance packets)")
		depth      = fs.Int("depth", 2, "pipeline depth (concurrent epochs)")
		epochs     = fs.Int("epochs", 20, "epochs to commit")
		txsize     = fs.Int("txsize", 64, "bytes per client transaction")
		txinterval = fs.Duration("txinterval", 4*time.Second, "client submission interval")
		seed       = fs.Int64("seed", 1, "simulation seed")
		loss       = fs.Float64("loss", 0.02, "per-receiver frame loss probability")
		crash      = fs.String("crash", "", "comma-separated node ids to crash at t=0")
		scen       = fs.String("scenario", "", "scripted fault DSL: crash|recover|partition|heal|loss|jam|delay|byz events (e.g. crash@30m:3;byz@0s:2:garbage)")
	)
	fs.Parse(args)

	opts := protocol.DefaultChainOptions(checkKind(*proto), protocol.CoinKind(*coin))
	opts.Batched = !*baseline
	opts.Window = *depth
	opts.TargetEpochs = *epochs
	opts.TxSize = *txsize
	opts.TxInterval = *txinterval
	opts.Seed = *seed
	opts.Net.LossProb = *loss
	opts.Scenario = buildScenario(*scen, *crash)

	res, err := protocol.ChainRun(opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "wbft:", err)
		os.Exit(1)
	}
	fmt.Printf("chain           %s-%s (batched=%v, depth=%d)\n", *proto, *coin, opts.Batched, *depth)
	fmt.Printf("epochs          %d committed, gap-free, identical at all correct nodes\n", res.EpochsCommitted)
	fmt.Printf("virtual time    %v\n", res.Duration.Round(time.Second))
	fmt.Printf("committed txs   %d (%d offered; rest is mempool backlog) (%d duplicate proposals suppressed)\n",
		res.CommittedTxs, res.SubmittedTxs, res.DedupDropped)
	fmt.Printf("throughput      %.2f committed B/s (%d bytes total)\n", res.ThroughputBps, res.CommittedBytes)
	fmt.Printf("commit latency  %v mean (epoch start -> commit)\n", res.MeanCommitLatency.Round(time.Millisecond))
	fmt.Printf("epoch cadence   %v between commits\n",
		(res.Duration / time.Duration(res.EpochsCommitted)).Round(time.Millisecond))
	fmt.Printf("open epochs     %d peak (pipeline + GC lag bound)\n", res.MaxOpenEpochs)
	fmt.Printf("chan accesses   %d (collisions %d)\n", res.Accesses, res.Collisions)
	fmt.Printf("bytes on air    %d\n", res.BytesOnAir)
}

func runSingle() {
	var (
		proto    = flag.String("protocol", "honeybadger", "honeybadger | beat | dumbo")
		coin     = flag.String("coin", "SC", "LC (local) | SC (threshold sig) | CP (coin flipping)")
		baseline = flag.Bool("baseline", false, "disable ConsensusBatcher (per-instance packets)")
		epochs   = flag.Int("epochs", 3, "consensus epochs to run")
		batch    = flag.Int("batch", 4, "transactions per proposal")
		txsize   = flag.Int("txsize", 64, "bytes per transaction")
		seed     = flag.Int64("seed", 1, "simulation seed")
		loss     = flag.Float64("loss", 0.02, "per-receiver frame loss probability")
		crash    = flag.String("crash", "", "comma-separated node ids to crash at t=0")
		scen     = flag.String("scenario", "", "scripted fault DSL: crash|recover|partition|heal|loss|jam|delay|byz events (e.g. crash@30m:3;byz@0s:2:garbage)")
		multihop = flag.Bool("multihop", false, "16 nodes in 4 clusters instead of single-hop")
		heavy    = flag.Bool("heavy", false, "heavy crypto parameter set (BN254-equivalent)")
	)
	flag.Parse()

	kind := checkKind(*proto)
	opts := protocol.DefaultOptions(kind, protocol.CoinKind(*coin))
	opts.Batched = !*baseline
	opts.Epochs = *epochs
	opts.BatchSize = *batch
	opts.TxSize = *txsize
	opts.Seed = *seed
	opts.Net.LossProb = *loss
	opts.Deadline = 8 * time.Hour
	if *heavy {
		opts.Crypto = crypto.HeavyConfig()
	}
	opts.Scenario = buildScenario(*scen, *crash)

	if *multihop {
		mh := protocol.DefaultMultihopOptions(kind, protocol.CoinKind(*coin))
		mh.Single = opts
		res, err := protocol.RunMultihop(mh)
		if err != nil {
			fmt.Fprintln(os.Stderr, "wbft:", err)
			os.Exit(1)
		}
		fmt.Printf("protocol        %s-%s (multihop, batched=%v)\n", kind, *coin, opts.Batched)
		printCommon(res.Result)
		fmt.Printf("local accesses  %d\nglobal accesses %d\n", res.LocalAccesses, res.GlobalAccesses)
		return
	}

	res, err := protocol.Run(opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "wbft:", err)
		os.Exit(1)
	}
	fmt.Printf("protocol        %s-%s (single-hop, batched=%v)\n", kind, *coin, opts.Batched)
	printCommon(*res)
}

func printCommon(res protocol.Result) {
	fmt.Printf("epochs          %d\n", len(res.EpochLatencies))
	for i, l := range res.EpochLatencies {
		fmt.Printf("  epoch %d       %v\n", i, l.Round(time.Millisecond))
	}
	fmt.Printf("mean latency    %v\n", res.MeanLatency.Round(time.Millisecond))
	fmt.Printf("throughput      %.1f TPM\n", res.TPM)
	fmt.Printf("delivered txs   %d\n", res.DeliveredTxs)
	fmt.Printf("chan accesses   %d (collisions %d)\n", res.Accesses, res.Collisions)
	fmt.Printf("bytes on air    %d\n", res.BytesOnAir)
	fmt.Printf("signed packets  %d (sign ops %d, verify ops %d)\n", res.LogicalSent, res.SignOps, res.VerifyOps)
}
