// Command wbft runs one wireless asynchronous BFT consensus simulation
// from flags and prints the measured results.
//
// Usage:
//
//	wbft -protocol honeybadger|beat|dumbo -coin LC|SC|CP [-baseline]
//	     [-epochs N] [-batch N] [-txsize N] [-seed N] [-loss P]
//	     [-crash 3] [-multihop] [-heavy]
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/crypto"
	"repro/internal/protocol"
)

func main() {
	var (
		proto    = flag.String("protocol", "honeybadger", "honeybadger | beat | dumbo")
		coin     = flag.String("coin", "SC", "LC (local) | SC (threshold sig) | CP (coin flipping)")
		baseline = flag.Bool("baseline", false, "disable ConsensusBatcher (per-instance packets)")
		epochs   = flag.Int("epochs", 3, "consensus epochs to run")
		batch    = flag.Int("batch", 4, "transactions per proposal")
		txsize   = flag.Int("txsize", 64, "bytes per transaction")
		seed     = flag.Int64("seed", 1, "simulation seed")
		loss     = flag.Float64("loss", 0.02, "per-receiver frame loss probability")
		crash    = flag.String("crash", "", "comma-separated node ids to crash")
		multihop = flag.Bool("multihop", false, "16 nodes in 4 clusters instead of single-hop")
		heavy    = flag.Bool("heavy", false, "heavy crypto parameter set (BN254-equivalent)")
	)
	flag.Parse()

	kind := protocol.Kind(*proto)
	switch kind {
	case protocol.HoneyBadger, protocol.BEAT, protocol.DumboKind:
	default:
		fmt.Fprintf(os.Stderr, "wbft: unknown protocol %q\n", *proto)
		os.Exit(2)
	}

	opts := protocol.DefaultOptions(kind, protocol.CoinKind(*coin))
	opts.Batched = !*baseline
	opts.Epochs = *epochs
	opts.BatchSize = *batch
	opts.TxSize = *txsize
	opts.Seed = *seed
	opts.Net.LossProb = *loss
	opts.Deadline = 8 * time.Hour
	if *heavy {
		opts.Crypto = crypto.HeavyConfig()
	}
	if *crash != "" {
		for _, part := range strings.Split(*crash, ",") {
			id, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil {
				fmt.Fprintf(os.Stderr, "wbft: bad -crash value %q\n", part)
				os.Exit(2)
			}
			opts.Faults.Crash = append(opts.Faults.Crash, id)
		}
	}

	if *multihop {
		mh := protocol.DefaultMultihopOptions(kind, protocol.CoinKind(*coin))
		mh.Single = opts
		res, err := protocol.RunMultihop(mh)
		if err != nil {
			fmt.Fprintln(os.Stderr, "wbft:", err)
			os.Exit(1)
		}
		fmt.Printf("protocol        %s-%s (multihop, batched=%v)\n", kind, *coin, opts.Batched)
		printCommon(res.Result)
		fmt.Printf("local accesses  %d\nglobal accesses %d\n", res.LocalAccesses, res.GlobalAccesses)
		return
	}

	res, err := protocol.Run(opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "wbft:", err)
		os.Exit(1)
	}
	fmt.Printf("protocol        %s-%s (single-hop, batched=%v)\n", kind, *coin, opts.Batched)
	printCommon(*res)
}

func printCommon(res protocol.Result) {
	fmt.Printf("epochs          %d\n", len(res.EpochLatencies))
	for i, l := range res.EpochLatencies {
		fmt.Printf("  epoch %d       %v\n", i, l.Round(time.Millisecond))
	}
	fmt.Printf("mean latency    %v\n", res.MeanLatency.Round(time.Millisecond))
	fmt.Printf("throughput      %.1f TPM\n", res.TPM)
	fmt.Printf("delivered txs   %d\n", res.DeliveredTxs)
	fmt.Printf("chan accesses   %d (collisions %d)\n", res.Accesses, res.Collisions)
	fmt.Printf("bytes on air    %d\n", res.BytesOnAir)
	fmt.Printf("signed packets  %d (sign ops %d, verify ops %d)\n", res.LogicalSent, res.SignOps, res.VerifyOps)
}
